(* BDD package tests: algebraic laws, agreement with cover semantics,
   quantification, composition and counting. *)

let all_points n =
  List.init (1 lsl n) (fun i -> Array.init n (fun v -> i land (1 lsl v) <> 0))

let gen_cover n =
  QCheck.Gen.(
    list_size (int_range 0 6)
      (array_repeat n (oneofl [ Logic.Cube.Zero; Logic.Cube.One; Logic.Cube.Both ])
       >|= Logic.Cube.of_lits)
    >|= fun cubes -> Logic.Cover.make n cubes)

let arb_cover n =
  QCheck.make ~print:(fun f -> Format.asprintf "%a" Logic.Cover.pp f) (gen_cover n)

let n_prop = 5

let prop_of_cover_semantics =
  QCheck.Test.make ~count:200 ~name:"of_cover agrees with Cover.eval"
    (arb_cover n_prop) (fun f ->
      let man = Bdd.create () in
      let b = Bdd.of_cover man f in
      List.for_all
        (fun p -> Bdd.eval man b (fun v -> p.(v)) = Logic.Cover.eval f p)
        (all_points n_prop))

let prop_canonical =
  QCheck.Test.make ~count:200 ~name:"equal functions share a handle"
    (QCheck.make QCheck.Gen.(pair (gen_cover n_prop) (gen_cover n_prop)))
    (fun (f, g) ->
      let man = Bdd.create () in
      let bf = Bdd.of_cover man f and bg = Bdd.of_cover man g in
      Bdd.equal bf bg = Logic.Cover.equivalent f g)

let prop_demorgan =
  QCheck.Test.make ~count:200 ~name:"De Morgan"
    (QCheck.make QCheck.Gen.(pair (gen_cover n_prop) (gen_cover n_prop)))
    (fun (f, g) ->
      let man = Bdd.create () in
      let bf = Bdd.of_cover man f and bg = Bdd.of_cover man g in
      Bdd.equal
        (Bdd.bnot man (Bdd.band man bf bg))
        (Bdd.bor man (Bdd.bnot man bf) (Bdd.bnot man bg)))

let prop_xor =
  QCheck.Test.make ~count:200 ~name:"xor = (a and not b) or (not a and b)"
    (QCheck.make QCheck.Gen.(pair (gen_cover n_prop) (gen_cover n_prop)))
    (fun (f, g) ->
      let man = Bdd.create () in
      let a = Bdd.of_cover man f and b = Bdd.of_cover man g in
      Bdd.equal (Bdd.bxor man a b)
        (Bdd.bor man
           (Bdd.band man a (Bdd.bnot man b))
           (Bdd.band man (Bdd.bnot man a) b)))

let prop_exists =
  QCheck.Test.make ~count:200 ~name:"exists v f = f_v + f_v'"
    (arb_cover n_prop) (fun f ->
      let man = Bdd.create () in
      let b = Bdd.of_cover man f in
      let direct = Bdd.exists man [ 2 ] b in
      let shannon =
        Bdd.bor man (Bdd.cofactor man b 2 true) (Bdd.cofactor man b 2 false)
      in
      Bdd.equal direct shannon)

let prop_forall =
  QCheck.Test.make ~count:200 ~name:"forall v f = f_v * f_v'"
    (arb_cover n_prop) (fun f ->
      let man = Bdd.create () in
      let b = Bdd.of_cover man f in
      Bdd.equal
        (Bdd.forall man [ 1; 3 ] b)
        (Bdd.forall man [ 3 ] (Bdd.forall man [ 1 ] b)))

let prop_and_exists =
  QCheck.Test.make ~count:200 ~name:"and_exists = exists of conjunction"
    (QCheck.make QCheck.Gen.(pair (gen_cover n_prop) (gen_cover n_prop)))
    (fun (f, g) ->
      let man = Bdd.create () in
      let a = Bdd.of_cover man f and b = Bdd.of_cover man g in
      Bdd.equal
        (Bdd.and_exists man [ 0; 2; 4 ] a b)
        (Bdd.exists man [ 0; 2; 4 ] (Bdd.band man a b)))

let prop_compose =
  QCheck.Test.make ~count:200 ~name:"compose agrees with evaluation"
    (QCheck.make QCheck.Gen.(pair (gen_cover n_prop) (gen_cover n_prop)))
    (fun (f, g) ->
      let man = Bdd.create () in
      let bf = Bdd.of_cover man f and bg = Bdd.of_cover man g in
      let c = Bdd.compose man bf 1 bg in
      List.for_all
        (fun p ->
          let p' = Array.copy p in
          p'.(1) <- Bdd.eval man bg (fun v -> p.(v));
          Bdd.eval man c (fun v -> p.(v)) = Bdd.eval man bf (fun v -> p'.(v)))
        (all_points n_prop))

let prop_sat_count =
  QCheck.Test.make ~count:200 ~name:"sat_count agrees with enumeration"
    (arb_cover n_prop) (fun f ->
      let man = Bdd.create () in
      let b = Bdd.of_cover man f in
      let expected =
        List.length (List.filter (Logic.Cover.eval f) (all_points n_prop))
      in
      abs_float (Bdd.sat_count man ~nvars:n_prop b -. float_of_int expected)
      < 0.5)

let prop_to_cover_roundtrip =
  QCheck.Test.make ~count:150 ~name:"to_cover/of_cover roundtrip"
    (arb_cover n_prop) (fun f ->
      let man = Bdd.create () in
      let b = Bdd.of_cover man f in
      let back = Bdd.of_cover man (Bdd.to_cover man ~nvars:n_prop b) in
      Bdd.equal b back)

let prop_compose_identity =
  QCheck.Test.make ~count:150 ~name:"compose with the variable is identity"
    (arb_cover n_prop) (fun f ->
      let man = Bdd.create () in
      let b = Bdd.of_cover man f in
      Bdd.equal b (Bdd.compose man b 2 (Bdd.var man 2)))

let prop_cover_is_disjoint =
  QCheck.Test.make ~count:100 ~name:"to_cover path cubes are pairwise disjoint"
    (arb_cover n_prop) (fun f ->
      let man = Bdd.create () in
      let c = Bdd.to_cover man ~nvars:n_prop (Bdd.of_cover man f) in
      let rec pairwise = function
        | [] -> true
        | x :: rest ->
          List.for_all (fun y -> Logic.Cube.intersect x y = None) rest
          && pairwise rest
      in
      pairwise c.Logic.Cover.cubes)

let test_terminals () =
  let man = Bdd.create () in
  Alcotest.(check bool) "true" true (Bdd.is_true Bdd.btrue);
  Alcotest.(check bool) "false" true (Bdd.is_false Bdd.bfalse);
  let v = Bdd.var man 0 in
  Alcotest.(check bool) "not not v = v" true
    (Bdd.equal v (Bdd.bnot man (Bdd.bnot man v)))

let test_rename () =
  let man = Bdd.create () in
  let f = Bdd.band man (Bdd.var man 0) (Bdd.var man 1) in
  let g = Bdd.rename man f (fun v -> v + 2) in
  let expected = Bdd.band man (Bdd.var man 2) (Bdd.var man 3) in
  Alcotest.(check bool) "shifted" true (Bdd.equal g expected)

let test_rename_swap () =
  let man = Bdd.create () in
  let f = Bdd.band man (Bdd.var man 0) (Bdd.bnot man (Bdd.var man 1)) in
  let g = Bdd.rename man f (fun v -> 1 - v) in
  let expected = Bdd.band man (Bdd.var man 1) (Bdd.bnot man (Bdd.var man 0)) in
  Alcotest.(check bool) "swapped" true (Bdd.equal g expected)

let test_any_sat () =
  let man = Bdd.create () in
  let f = Bdd.band man (Bdd.var man 0) (Bdd.bnot man (Bdd.var man 2)) in
  let assignment = Bdd.any_sat man f in
  Alcotest.(check bool) "satisfies" true
    (Bdd.eval man f (fun v ->
         match List.assoc_opt v assignment with Some b -> b | None -> false))

let test_support () =
  let man = Bdd.create () in
  let f = Bdd.bxor man (Bdd.var man 1) (Bdd.var man 3) in
  Alcotest.(check (list int)) "support" [ 1; 3 ] (Bdd.support man f)

let test_size_reduced () =
  let man = Bdd.create () in
  (* x0 xor x1 xor x2 has exactly 2 nodes per level in a reduced BDD: 5
     internal nodes for 3 variables (1 + 2 + 2). *)
  let f =
    Bdd.bxor man (Bdd.var man 0) (Bdd.bxor man (Bdd.var man 1) (Bdd.var man 2))
  in
  Alcotest.(check int) "xor chain size" 5 (Bdd.size man f)

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "bdd"
    [ ( "basic",
        [ Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "rename shift" `Quick test_rename;
          Alcotest.test_case "rename swap" `Quick test_rename_swap;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "reduced size" `Quick test_size_reduced ] );
      qsuite "props"
        [ prop_of_cover_semantics; prop_canonical; prop_demorgan; prop_xor;
          prop_exists; prop_forall; prop_and_exists; prop_compose;
          prop_sat_count; prop_to_cover_roundtrip; prop_compose_identity;
          prop_cover_is_disjoint ] ]
