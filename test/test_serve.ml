(* lib/serve tests: the JSON codec, the protocol grammar's structured
   errors, request-lifecycle determinism across pool sizes, mid-flow
   cancellation leaving warmed state clean, backpressure rejection,
   deadlines, Obs.Metrics.delta, trace sinks, and a live daemon round-trip
   over a Unix socket. *)

module J = Serve.Json
module P = Serve.Protocol
module E = Serve.Engine

let default = P.default_submit_options

let tiny_blif =
  ".model tiny\n\
   .inputs a b\n\
   .outputs y\n\
   .latch w q 0\n\
   .names a b w\n\
   11 1\n\
   .names q y\n\
   1 1\n\
   .end\n"

(* --- json codec --------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [ ("s", J.Str "a\"b\\c\nd");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Str "x"; J.Obj [] ]) ]
  in
  let text = J.to_string doc in
  (match J.parse text with
   | Ok parsed ->
     Alcotest.(check string) "print(parse(print)) fixpoint" text
       (J.to_string parsed)
   | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg);
  (match J.parse "{\"u\":\"\\u0041\\u00e9\"}" with
   | Ok v ->
     Alcotest.(check (option string)) "unicode escapes decode to UTF-8"
       (Some "A\xc3\xa9") (J.mem_str "u" v)
   | Error msg -> Alcotest.failf "unicode parse failed: %s" msg)

let test_json_errors () =
  let bad s =
    match J.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
    | Error msg -> Alcotest.(check bool) "error nonempty" true (msg <> "")
  in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "[1,]";
  bad "\"unterminated";
  bad "1 trailing";
  bad "{\"a\":1}}";
  (* nesting cap: structured error, not a stack overflow *)
  bad (String.make 200 '[');
  match J.parse "  {\"a\": [1, 2.5, null]}  " with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "rejected valid document: %s" msg

(* --- protocol grammar --------------------------------------------------------------- *)

let classify ?(max = 1000) line =
  match J.parse line with
  | Error msg -> Error ("bad-json", msg)
  | Ok doc -> P.request_of_json ~max_netlist_bytes:max doc

let check_code name expected got =
  match got with
  | Error (code, _) -> Alcotest.(check string) name expected code
  | Ok _ -> Alcotest.failf "%s: expected error %s, got a request" name expected

let test_protocol_errors () =
  check_code "malformed json" "bad-json" (classify "{nope");
  check_code "missing op" "bad-request" (classify "{}");
  check_code "unknown op" "unknown-op" (classify "{\"op\":\"frobnicate\"}");
  check_code "submit needs a source" "bad-request" (classify "{\"op\":\"submit\"}");
  check_code "both sources" "bad-request"
    (classify "{\"op\":\"submit\",\"benchmark\":\"s27\",\"netlist\":\"x\"}");
  check_code "oversized netlist" "netlist-too-large"
    (classify ~max:4 "{\"op\":\"submit\",\"netlist\":\"12345\"}");
  check_code "status needs id" "bad-request" (classify "{\"op\":\"status\"}");
  check_code "bad timeout" "bad-request"
    (classify "{\"op\":\"submit\",\"benchmark\":\"s27\",\"timeout_s\":-1}");
  (match classify "{\"op\":\"submit\",\"benchmark\":\"s27\",\"eqcheck_each\":true}" with
   | Ok (P.Submit { source = P.Benchmark "s27"; opts; _ }) ->
     Alcotest.(check bool) "eqcheck_each parsed" true opts.P.eqcheck_each;
     Alcotest.(check bool) "verify defaults on" true opts.P.verify
   | _ -> Alcotest.fail "valid submit rejected");
  match classify "{\"op\":\"shutdown\"}" with
  | Ok (P.Shutdown { drain }) ->
    Alcotest.(check bool) "shutdown drains by default" true drain
  | _ -> Alcotest.fail "shutdown rejected"

(* --- engine helpers ----------------------------------------------------------------- *)

let expect_ok name reply =
  match J.mem_bool "ok" reply with
  | Some true -> ()
  | _ -> Alcotest.failf "%s: %s" name (J.to_string reply)

let expect_error name code reply =
  Alcotest.(check (option string)) name (Some code) (J.mem_str "error" reply)

let job_state eng id =
  match J.mem_str "state" (E.status eng id) with
  | Some s -> s
  | None -> Alcotest.failf "no state for %s" id

let result_payload eng id =
  match J.member "result" (E.result eng id) with
  | Some p -> J.to_string p
  | None -> Alcotest.failf "request %s has no result: %s" id
              (J.to_string (E.result eng id))

let submit_and_drain eng ~id ?(opts = default) source =
  expect_ok ("submit " ^ id) (E.submit eng ~id:(Some id) source opts);
  E.drain eng

(* --- determinism across pool sizes -------------------------------------------------- *)

let payload_for_jobs jobs =
  Core.Parallel.run ~jobs (fun () ->
      let eng = E.create () in
      submit_and_drain eng ~id:"det"
        ~opts:{ default with P.eqcheck_each = true }
        (P.Benchmark "s27");
      let bench = result_payload eng "det" in
      submit_and_drain eng ~id:"blif" (P.Blif tiny_blif);
      bench ^ "\x00" ^ result_payload eng "blif")

let test_jobs_determinism () =
  let p1 = payload_for_jobs 1 in
  let p2 = payload_for_jobs 2 in
  let p4 = payload_for_jobs 4 in
  Alcotest.(check string) "jobs 1 vs 2 byte-identical" p1 p2;
  Alcotest.(check string) "jobs 1 vs 4 byte-identical" p1 p4

let test_row_matches_one_shot () =
  let via_engine =
    Core.Parallel.run ~jobs:2 (fun () ->
        let eng = E.create () in
        submit_and_drain eng ~id:"r" (P.Benchmark "s27");
        match J.member "result" (E.result eng "r") with
        | Some p -> J.mem_str "row" p
        | None -> None)
  in
  let one_shot =
    match Report.Table.run_suite ~names:[ "s27" ] () with
    | [ row ] -> Some (Report.Table.row_to_string row)
    | _ -> None
  in
  Alcotest.(check (option string)) "served row = one-shot table row" one_shot
    via_engine

(* --- cancellation leaves warmed state clean ----------------------------------------- *)

let test_cancel_mid_flow () =
  Core.Parallel.run ~jobs:2 (fun () ->
      let eng = E.create () in
      (* self-cancel after 3 pass boundaries: deterministically mid-flow *)
      expect_ok "submit cancelling job"
        (E.submit eng ~id:(Some "c")
           (P.Benchmark "s27")
           { default with P.cancel_after_passes = Some 3 });
      E.drain eng;
      Alcotest.(check string) "job cancelled" "cancelled" (job_state eng "c");
      expect_error "result reports cancelled" "cancelled" (E.result eng "c");
      (* the next request on the same engine — same warm cache, same shared
         BDD table — must complete with every pass verdict clean *)
      submit_and_drain eng ~id:"after"
        ~opts:{ default with P.eqcheck_each = true }
        (P.Benchmark "s27");
      Alcotest.(check string) "follow-up done" "done" (job_state eng "after");
      let payload = result_payload eng "after" in
      let refuted =
        match J.member "result" (E.result eng "after") with
        | Some p ->
          (match J.member "eqcheck" p with
           | Some eq -> J.mem_int "refuted" eq
           | None -> None)
        | None -> None
      in
      Alcotest.(check (option int)) "0 refuted after cancel" (Some 0) refuted;
      (* and byte-identical to the same request on a never-cancelled engine *)
      let fresh = E.create () in
      submit_and_drain fresh ~id:"after"
        ~opts:{ default with P.eqcheck_each = true }
        (P.Benchmark "s27");
      Alcotest.(check string) "identical to fresh engine"
        (result_payload fresh "after") payload)

let test_timeout () =
  Core.Parallel.run ~jobs:2 (fun () ->
      let eng = E.create () in
      expect_ok "submit with tiny deadline"
        (E.submit eng ~id:(Some "t")
           (P.Benchmark "s27")
           { default with P.timeout_s = Some 1e-9 });
      E.drain eng;
      Alcotest.(check string) "timed out" "timed-out" (job_state eng "t");
      expect_error "result reports timeout" "timeout" (E.result eng "t"))

(* --- backpressure ------------------------------------------------------------------- *)

let test_backpressure () =
  Core.Parallel.run ~jobs:2 (fun () ->
      let eng =
        E.create
          ~config:{ E.default_config with E.queue_capacity = 1 }
          ()
      in
      let release = Atomic.make false in
      expect_ok "held job admitted" (E.submit_held eng ~id:(Some "hold") ~release);
      let rejected =
        E.submit eng ~id:(Some "next") (P.Benchmark "s27") default
      in
      expect_error "queue full" "queue-full" rejected;
      Alcotest.(check (option int)) "retry hint" (Some 100)
        (J.mem_int "retry_after_ms" rejected);
      Atomic.set release true;
      E.drain eng;
      Alcotest.(check string) "held job completed" "done" (job_state eng "hold");
      submit_and_drain eng ~id:"next" (P.Benchmark "s27");
      Alcotest.(check string) "slot freed" "done" (job_state eng "next"))

let test_engine_errors () =
  let eng = E.create () in
  expect_error "unknown benchmark" "unknown-benchmark"
    (E.submit eng ~id:(Some "x") (P.Benchmark "sXYZ") default);
  expect_error "blif parse error" "parse-error"
    (E.submit eng ~id:(Some "x") (P.Blif ".model broken\n.names\n.end\n") default);
  expect_error "unknown id" "unknown-id" (E.status eng "nope");
  submit_and_drain eng ~id:"dup" (P.Blif tiny_blif);
  expect_error "duplicate id" "duplicate-id"
    (E.submit eng ~id:(Some "dup") (P.Blif tiny_blif) default)

(* --- Obs.Metrics.delta -------------------------------------------------------------- *)

let test_metrics_delta () =
  Obs.Metrics.enable ();
  let c = Obs.Metrics.counter "test.serve.delta_counter" in
  let g = Obs.Metrics.gauge "test.serve.delta_gauge" in
  let h = Obs.Metrics.histogram "test.serve.delta_hist" in
  Obs.Metrics.incr c;
  Obs.Metrics.set_gauge g 1.0;
  Obs.Metrics.observe h 4;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check int) "quiescent delta is empty" 0
    (List.length (Obs.Metrics.delta snap));
  Obs.Metrics.add c 2;
  Obs.Metrics.set_gauge g 3.5;
  Obs.Metrics.observe h 8;
  Obs.Metrics.observe h 8;
  let d = Obs.Metrics.delta snap in
  (match List.assoc_opt "test.serve.delta_counter" d with
   | Some (Obs.Metrics.Counter n) -> Alcotest.(check int) "counter delta" 2 n
   | _ -> Alcotest.fail "counter missing from delta");
  (match List.assoc_opt "test.serve.delta_gauge" d with
   | Some (Obs.Metrics.Gauge v) ->
     Alcotest.(check (float 0.0)) "gauge current value" 3.5 v
   | _ -> Alcotest.fail "gauge missing from delta");
  match List.assoc_opt "test.serve.delta_hist" d with
  | Some (Obs.Metrics.Histogram hs) ->
    Alcotest.(check int) "histogram delta count" 2 hs.Obs.Metrics.count;
    Alcotest.(check int) "histogram delta sum" 16 hs.Obs.Metrics.sum
  | _ -> Alcotest.fail "histogram missing from delta"

(* --- trace sinks -------------------------------------------------------------------- *)

let test_trace_sink () =
  Obs.Trace.disable ();
  Obs.Trace.reset ();
  Obs.Trace.enable ();
  let seen = ref [] in
  let flushed = ref 0 in
  let id =
    Obs.Trace.add_sink
      { Obs.Trace.on_span =
          (fun s -> seen := s.Obs.Trace.name :: !seen);
        on_flush = (fun () -> incr flushed) }
  in
  Obs.Trace.set_buffering false;
  Obs.Trace.span "streamed-only" (fun () -> ());
  Alcotest.(check int) "unbuffered span not recorded" 0
    (List.length (Obs.Trace.spans ()));
  Alcotest.(check (list string)) "sink saw the span" [ "streamed-only" ] !seen;
  Obs.Trace.set_buffering true;
  Obs.Trace.span "both" (fun () -> ());
  Alcotest.(check int) "buffered span recorded" 1
    (List.length (Obs.Trace.spans ()));
  Alcotest.(check (list string)) "sink saw both" [ "both"; "streamed-only" ]
    !seen;
  Obs.Trace.flush_sinks ();
  Alcotest.(check int) "flush reached the sink" 1 !flushed;
  Obs.Trace.remove_sink id;
  Obs.Trace.span "after-removal" (fun () -> ());
  Alcotest.(check int) "removed sink sees nothing" 2 (List.length !seen);
  Obs.Trace.disable ();
  Obs.Trace.reset ()

(* --- live daemon over a Unix socket ------------------------------------------------- *)

let test_daemon_socket () =
  let path = Filename.temp_file "resynthd-test" ".sock" in
  Sys.remove path;
  let endpoint = Serve.Daemon.Unix_socket path in
  let ready = Atomic.make false in
  let daemon =
    Domain.spawn (fun () ->
        Serve.Daemon.run ~jobs:2
          ~config:{ E.default_config with E.max_netlist_bytes = 100_000 }
          ~ready:(fun () -> Atomic.set ready true)
          endpoint)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let conn = Serve.Client.connect endpoint in
  let ok = function
    | Ok v -> v
    | Error msg -> Alcotest.failf "client request failed: %s" msg
  in
  expect_ok "ping" (ok (Serve.Client.request conn (J.Obj [ ("op", J.Str "ping") ])));
  expect_error "malformed line" "bad-json"
    (ok (Serve.Client.request_line conn "{this is not json"));
  expect_error "unknown op over the wire" "unknown-op"
    (ok (Serve.Client.request conn (J.Obj [ ("op", J.Str "nonsense") ])));
  expect_error "oversized netlist over the wire" "netlist-too-large"
    (ok
       (Serve.Client.request conn
          (J.Obj
             [ ("op", J.Str "submit");
               ("netlist", J.Str (String.make 100_001 'x')) ])));
  (* span streaming on a second connection, subscribed before the submit *)
  let stream = Serve.Client.connect endpoint in
  expect_ok "stream subscribe"
    (ok (Serve.Client.request stream (J.Obj [ ("op", J.Str "stream-spans") ])));
  let reply =
    ok
      (Serve.Client.submit_and_wait conn
         (J.Obj
            [ ("op", J.Str "submit");
              ("id", J.Str "s27");
              ("benchmark", J.Str "s27") ]))
  in
  expect_ok "served flow" reply;
  let row =
    match J.member "result" reply with
    | Some p -> J.mem_str "row" p
    | None -> None
  in
  let one_shot =
    match Report.Table.run_suite ~names:[ "s27" ] () with
    | [ r ] -> Some (Report.Table.row_to_string r)
    | _ -> None
  in
  Alcotest.(check (option string)) "daemon row = one-shot row" one_shot row;
  (* the subscriber received the request's flow span as a JSON line: the
     span completed (and was delivered) before the job turned "done", so
     the line is already buffered on this connection *)
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  let rec hunt remaining =
    if remaining = 0 then false
    else
      match Serve.Client.read_line stream with
      | None -> false
      | Some line ->
        contains line "serve/flow/s27" || hunt (remaining - 1)
  in
  Alcotest.(check bool) "span stream delivered the flow span" true (hunt 500);
  let metrics =
    ok (Serve.Client.request conn (J.Obj [ ("op", J.Str "metrics") ]))
  in
  (match J.mem_str "body" metrics with
   | Some body ->
     Alcotest.(check bool) "metrics body has serve accounting" true
       (contains body "serve_jobs_accepted")
   | None -> Alcotest.fail "metrics op returned no body");
  expect_ok "shutdown"
    (ok
       (Serve.Client.request conn
          (J.Obj [ ("op", J.Str "shutdown"); ("drain", J.Bool true) ])));
  Serve.Client.close conn;
  Serve.Client.close stream;
  Domain.join daemon;
  Alcotest.(check bool) "socket unlinked on shutdown" false (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [ ("json",
       [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
         Alcotest.test_case "errors" `Quick test_json_errors ]);
      ("protocol",
       [ Alcotest.test_case "structured-errors" `Quick test_protocol_errors ]);
      ("engine",
       [ Alcotest.test_case "jobs-determinism" `Quick test_jobs_determinism;
         Alcotest.test_case "row-matches-one-shot" `Quick
           test_row_matches_one_shot;
         Alcotest.test_case "cancel-mid-flow" `Quick test_cancel_mid_flow;
         Alcotest.test_case "timeout" `Quick test_timeout;
         Alcotest.test_case "backpressure" `Quick test_backpressure;
         Alcotest.test_case "structured-errors" `Quick test_engine_errors ]);
      ("obs",
       [ Alcotest.test_case "metrics-delta" `Quick test_metrics_delta;
         Alcotest.test_case "trace-sink" `Quick test_trace_sink ]);
      ("daemon",
       [ Alcotest.test_case "unix-socket-roundtrip" `Quick test_daemon_socket ])
    ]
