(* Sanitizer (dynamic head) and lint (static head).

   The mutation tests seed one concurrency-protocol violation each — a
   dropped publication fence, an inverted lock order, an unstamped DLS
   cache entry, a double-claimed / foreign-completed future — and assert
   that exactly the intended rule id fires.  The qcheck property drives
   the checker with thousands of random *legal* event interleavings and
   asserts it never reports (no false positives).  The integration test
   runs real scheduler + shared-BDD work under the sanitizer.  The lint
   tests exercise the rule engine on synthetic sources, including the
   waiver contract (trailing, standalone, unjustified, unknown, stale). *)

module S = Sanitize
module P = Core.Parallel

(* Each test runs with the sanitizer armed and leaves it disarmed and
   clean, so test order never matters. *)
let sanitized f =
  S.reset ();
  S.enable ();
  Fun.protect
    ~finally:(fun () ->
      S.disable ();
      S.reset ())
    f

let rule_ids () = List.map (fun f -> f.S.rule_id) (S.findings ())

let check_rules msg expected =
  Alcotest.(check (list string)) msg expected (rule_ids ())

(* --- mutation: dropped publication fence -------------------------------------- *)

let test_dropped_fence () =
  sanitized (fun () ->
      (* legal protocol first: no findings *)
      S.Pub.wrote ~table:901 ~id:7;
      S.Pub.fenced ~table:901 ~id:7;
      S.Pub.published ~table:901 ~id:7;
      S.Pub.read ~table:901 ~id:7;
      check_rules "legal publication is clean" [];
      (* mutation: skip the fence *)
      S.Pub.wrote ~table:901 ~id:8;
      S.Pub.published ~table:901 ~id:8;
      check_rules "dropped fence at publish" [ "pub/unfenced-publish" ];
      (* a reader trusting that id is the observable damage *)
      S.Pub.read ~table:901 ~id:8;
      check_rules "dropped fence at read"
        [ "pub/unfenced-publish"; "pub/unfenced-read" ])

let test_double_write () =
  sanitized (fun () ->
      S.Pub.wrote ~table:902 ~id:3;
      S.Pub.wrote ~table:902 ~id:3;
      check_rules "second field write" [ "pub/double-write" ])

let test_pub_unseen_ids_exempt () =
  sanitized (fun () ->
      (* ids never seen by [wrote] model nodes consed before enabling:
         publishing or reading them must not report *)
      S.Pub.published ~table:903 ~id:11;
      S.Pub.read ~table:903 ~id:11;
      S.Pub.read ~table:903 ~id:4096 (* beyond any store growth *);
      check_rules "pre-enable ids are exempt" [])

(* --- mutation: inverted lock order --------------------------------------------- *)

let test_lock_cycle_single_domain () =
  sanitized (fun () ->
      let a = S.Lock.create ~order:1 ~name:"test.a" in
      let b = S.Lock.create ~order:2 ~name:"test.b" in
      (* consistent nesting a -> b: legal *)
      S.Lock.lock a;
      S.Lock.lock b;
      S.Lock.unlock b;
      S.Lock.unlock a;
      check_rules "consistent order is clean" [];
      (* mutation: nest b -> a, closing the cycle *)
      S.Lock.lock b;
      S.Lock.lock a;
      S.Lock.unlock a;
      S.Lock.unlock b;
      check_rules "inverted order" [ "lock/cycle" ];
      match S.findings () with
      | [ f ] ->
        Alcotest.(check (list string))
          "cycle names both locks" [ "test.a"; "test.b" ] f.S.sites;
        Alcotest.(check bool)
          "message carries acquisition backtraces" true
          (String.length f.S.message > 0)
      | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

let test_lock_cycle_across_domains () =
  sanitized (fun () ->
      let a = S.Lock.create ~order:1 ~name:"dom.a" in
      let b = S.Lock.create ~order:2 ~name:"dom.b" in
      (* domain 1 nests a -> b and fully releases before domain 0 runs, so
         the schedule itself cannot deadlock — only the *order* is bad *)
      Domain.join
        (Domain.spawn (fun () ->
             S.Lock.lock a;
             S.Lock.lock b;
             S.Lock.unlock b;
             S.Lock.unlock a));
      S.Lock.lock b;
      S.Lock.lock a;
      S.Lock.unlock a;
      S.Lock.unlock b;
      check_rules "cross-domain inverted order" [ "lock/cycle" ])

let test_try_lock_participates () =
  sanitized (fun () ->
      let a = S.Lock.create ~order:1 ~name:"try.a" in
      let b = S.Lock.create ~order:2 ~name:"try.b" in
      S.Lock.lock a;
      Alcotest.(check bool) "try_lock succeeds" true (S.Lock.try_lock b);
      S.Lock.unlock b;
      S.Lock.unlock a;
      Alcotest.(check bool) "try_lock succeeds" true (S.Lock.try_lock b);
      S.Lock.lock a;
      S.Lock.unlock a;
      S.Lock.unlock b;
      check_rules "try_lock edges close the cycle too" [ "lock/cycle" ])

(* --- mutation: future claim discipline ----------------------------------------- *)

let test_future_double_claim () =
  sanitized (fun () ->
      let f1 = S.Future.fresh () in
      S.Future.claimed_by ~fut:f1 ~domain:1;
      S.Future.completed_by ~fut:f1 ~domain:1;
      check_rules "single claim + own completion is clean" [];
      let f2 = S.Future.fresh () in
      S.Future.claimed_by ~fut:f2 ~domain:1;
      S.Future.claimed_by ~fut:f2 ~domain:2;
      check_rules "second Pending->Running claim" [ "future/double-claim" ])

let test_future_foreign_done () =
  sanitized (fun () ->
      let f1 = S.Future.fresh () in
      S.Future.claimed_by ~fut:f1 ~domain:1;
      S.Future.completed_by ~fut:f1 ~domain:2;
      check_rules "completion by non-claimant" [ "future/foreign-done" ];
      S.reset ();
      let f2 = S.Future.fresh () in
      S.Future.completed_by ~fut:f2 ~domain:1;
      check_rules "completion without any claim" [ "future/foreign-done" ])

(* --- mutation: unstamped DLS cache --------------------------------------------- *)

let test_dls_cross_scope () =
  sanitized (fun () ->
      S.Dls.cache_hit ~entry_uid:41 ~scope_uid:41;
      check_rules "matching stamp is clean" [];
      (* mutation: an entry stamped by scope 41 serving scope 42 models a
         cache that skipped the scope-stamp check *)
      S.Dls.cache_hit ~entry_uid:41 ~scope_uid:42;
      check_rules "unstamped cache hit" [ "dls/cross-scope-hit" ])

(* --- reporting ------------------------------------------------------------------ *)

let test_findings_deduped_and_rendered () =
  sanitized (fun () ->
      for _ = 1 to 100 do
        S.Dls.cache_hit ~entry_uid:1 ~scope_uid:2
      done;
      Alcotest.(check int)
        "hot loop reports once" 1
        (List.length (S.findings ()));
      let txt = S.render (S.findings ()) in
      Alcotest.(check bool)
        "text render carries rule id" true
        (String.length txt > 0
        &&
        let re = "error[dls/cross-scope-hit]" in
        String.length txt >= String.length re
        && String.sub txt 0 (String.length re) = re);
      let js = S.render_json (S.findings ()) in
      Alcotest.(check bool)
        "json render is an array" true
        (js.[0] = '[' && js.[String.length js - 1] = ']'))

let test_render_json_empty () =
  sanitized (fun () ->
      Alcotest.(check string) "empty array" "[\n]" (S.render_json []))

let test_disabled_is_silent () =
  S.reset ();
  S.disable ();
  S.Pub.wrote ~table:904 ~id:1;
  S.Pub.published ~table:904 ~id:1;
  S.Dls.cache_hit ~entry_uid:1 ~scope_uid:2;
  Alcotest.(check int) "no events recorded when disabled" 0
    (List.length (S.findings ()))

(* --- qcheck: random legal interleavings never report ---------------------------- *)

(* A legal history over [n] nodes, [k] locks and [m] futures:
   - per node, wrote -> fenced -> published -> read+ in order;
   - locks always nested in ascending creation order;
   - each future claimed then completed by one domain.
   Events of different objects interleave arbitrarily (driven by the
   qcheck-generated pick sequence): the checker must stay silent. *)
let run_legal_history ~table picks =
  let n_nodes = 6 and n_locks = 3 and n_futs = 4 in
  let locks =
    Array.init n_locks (fun i ->
        S.Lock.create ~order:i ~name:(Printf.sprintf "q.%d.%d" table i))
  in
  let futs = Array.init n_futs (fun _ -> S.Future.fresh ()) in
  (* remaining per-object scripts, each consumed front-first *)
  let node_script id =
    [ (fun () -> S.Pub.wrote ~table ~id);
      (fun () -> S.Pub.fenced ~table ~id);
      (fun () -> S.Pub.published ~table ~id);
      (fun () -> S.Pub.read ~table ~id);
      (fun () -> S.Pub.read ~table ~id) ]
  in
  let lock_script i =
    (* nest everything from i upward, in ascending order; acquire and
       release in one event so interleaved scripts never re-lock a mutex
       this same thread already holds *)
    let ups = Array.to_list (Array.sub locks i (n_locks - i)) in
    [ (fun () ->
        List.iter S.Lock.lock ups;
        List.iter S.Lock.unlock (List.rev ups)) ]
  in
  let fut_script i =
    [ (fun () -> S.Future.claimed_by ~fut:futs.(i) ~domain:(i mod 3));
      (fun () -> S.Future.completed_by ~fut:futs.(i) ~domain:(i mod 3)) ]
  in
  let scripts =
    Array.of_list
      (List.init n_nodes (fun i -> ref (node_script (i + 2)))
      @ List.init n_locks (fun i -> ref (lock_script i))
      @ List.init n_futs (fun i -> ref (fut_script i)))
  in
  let total = Array.fold_left (fun a s -> a + List.length !s) 0 scripts in
  let picks = ref picks in
  let next_pick () =
    match !picks with
    | [] -> 0
    | p :: rest ->
      picks := rest;
      p
  in
  for _ = 1 to total do
    (* pick the next non-empty script round-robin from a random start *)
    let start = abs (next_pick ()) mod Array.length scripts in
    let rec go k =
      if k < Array.length scripts then begin
        let s = scripts.((start + k) mod Array.length scripts) in
        match !s with
        | [] -> go (k + 1)
        | ev :: rest ->
          s := rest;
          ev ()
      end
    in
    go 0
  done

let qcheck_no_false_positives =
  QCheck.Test.make ~count:200 ~name:"legal interleavings are clean"
    QCheck.(list_of_size (Gen.int_range 20 60) small_int)
    (fun picks ->
      S.reset ();
      S.enable ();
      Fun.protect
        ~finally:(fun () ->
          S.disable ();
          S.reset ())
        (fun () ->
          (* distinct table uid per run so node protocol states from
             earlier iterations cannot bleed in *)
          run_legal_history ~table:(1000 + Hashtbl.hash picks mod 1000) picks;
          S.findings () = []))

(* --- integration: real scheduler + shared BDD work under the sanitizer ---------- *)

let test_real_flow_clean () =
  sanitized (fun () ->
      let results =
        P.map ~jobs:4
          (fun seed ->
            let man = Bdd.create ~mode:`Shared () in
            let x = Bdd.var man (seed mod 5)
            and y = Bdd.var man ((seed + 1) mod 5)
            and z = Bdd.var man ((seed + 2) mod 5) in
            let f = Bdd.bor man (Bdd.band man x y) (Bdd.bxor man y z) in
            let g = Bdd.exists man [ seed mod 5 ] f in
            let h = Bdd.ite man f g (Bdd.bnot man z) in
            (* re-run the same ops so ITE / exists caches actually hit *)
            let g' = Bdd.exists man [ seed mod 5 ] f in
            assert (Bdd.equal g g');
            Bdd.node_count man + if Bdd.is_false h then 1 else 0)
          (Array.init 32 (fun i -> i))
      in
      Alcotest.(check int) "all rows ran" 32 (Array.length results);
      check_rules "instrumented sched+bdd run is clean" [])

(* --- lint: rule engine ----------------------------------------------------------- *)

let scan ?waivers src = fst (Sanlint.scan_file ?waivers ~path:"synt/x.ml" src)

let scan_rules ?waivers src =
  List.map (fun f -> f.Sanitize.rule_id) (scan ?waivers src)

let test_lint_rules_fire () =
  let cases =
    [ ("let () = Hashtbl.iter f t\n", [ "nondet/hashtbl-order" ]);
      ("let t0 = Unix.gettimeofday () in\n", [ "nondet/wall-clock" ]);
      ("let x = Random.int 5\n", [ "nondet/ambient-random" ]);
      ("let d = (Domain.self () :> int)\n", [ "nondet/domain-id" ]);
      ("let k = Obj.repr v\n", [ "mm/physical-eq-key" ]);
      ( "let v = Atomic.get t.published in\n",
        [ "mm/naked-atomic-get" ] ) ]
  in
  List.iter
    (fun (src, expected) ->
      Alcotest.(check (list string)) src expected (scan_rules src))
    cases

let test_lint_exemptions () =
  let clean =
    [ (* sorted on the same line: normalized *)
      "let xs = List.sort compare (Hashtbl.fold f t [])\n";
      (* seeded random state is deterministic *)
      "let st = Random.State.make [| 7 |]\n";
      (* allocation alone is no longer a rule: the typed analyzer's
         typed/module-escape judges real reachability instead *)
      "let cache = Hashtbl.create 64\n";
      "let lock = Mutex.create ()\n";
      "let m_x = Obs.Metrics.counter \"x\"\n";
      "let _ = Hashtbl.length t\n" ]
  in
  List.iter
    (fun src -> Alcotest.(check (list string)) src [] (scan_rules src))
    clean

let test_lint_strip () =
  (* patterns inside comments, strings and chars never fire *)
  let clean =
    [ "(* Unix.gettimeofday is mentioned here *)\nlet x = 1\n";
      "let s = \"Hashtbl.iter inside a string\"\n";
      "let c = '\"' and y = Random.State.make_self_init\n";
      "(* outer (* Obj.magic nested *) still comment *)\nlet x = 1\n";
      "let q = {|Domain.self in a quoted string|}\n";
      (* regression: delimited quoted strings inside comments balance like
         the real lexer: a close-comment token inside the quoted part does
         not end the comment *)
      "(* {x| *) Obj.magic |x} still a comment *)\nlet x = 1\n";
      "(* {| *) Obj.magic |} still a comment *)\nlet x = 1\n";
      (* regression: delimited quoted strings in code *)
      "let q = {ext|Obj.magic \" unclosed|ext}\nlet y = 2\n";
      (* regression: escaped quotes keep the string open *)
      "let s = \"a \\\" Hashtbl.iter f t \\\" b\"\nlet y = 2\n" ]
  in
  List.iter
    (fun src -> Alcotest.(check (list string)) src [] (scan_rules src))
    clean;
  (* a comment opened on one line hides code-looking text on the next *)
  Alcotest.(check (list string))
    "multiline comment" []
    (scan_rules "(* comment spanning\n   Hashtbl.iter lines *)\nlet x = 1\n");
  (* after a comment-embedded quoted string closes, code fires again *)
  Alcotest.(check (list string))
    "resync after comment with quoted string"
    [ "nondet/hashtbl-order" ]
    (scan_rules "(* {| *) |} *)\nlet () = Hashtbl.iter f t\n");
  (* regression: a char-literal quote inside a comment must not open a
     string and swallow the code after the comment (the real lexer
     balances char literals in comments too) *)
  Alcotest.(check (list string))
    "char literal quote in comment"
    [ "nondet/hashtbl-order" ]
    (scan_rules "(* '\"' *)\nlet () = Hashtbl.iter f t\n");
  Alcotest.(check (list string))
    "escaped char literal quote in comment"
    [ "nondet/hashtbl-order" ]
    (scan_rules "(* '\\\"' *)\nlet () = Hashtbl.iter f t\n")

let test_lint_waivers_in_source () =
  let trailing =
    "let t = Hashtbl.iter f x (* lint-waive: nondet/hashtbl-order — \
     commutative accumulation, honest *)\n"
  in
  Alcotest.(check (list string)) "trailing waiver" [] (scan_rules trailing);
  let standalone =
    "(* lint-waive: nondet/hashtbl-order — the justification wraps over \
     this\n   second comment line before the site below. *)\nlet () = \
     Hashtbl.iter f x\n"
  in
  Alcotest.(check (list string))
    "standalone waiver reaches past its comment" [] (scan_rules standalone);
  let unjustified = "(* lint-waive: nondet/hashtbl-order *)\nlet () = Hashtbl.iter f x\n" in
  Alcotest.(check bool)
    "waiver without justification is a finding" true
    (List.mem "lint/waiver-unjustified" (scan_rules unjustified));
  let unknown =
    "(* lint-waive: nondet/no-such-rule — plausible words but a bogus id *)\n\
     let x = 1\n"
  in
  Alcotest.(check (list string))
    "unknown rule id" [ "lint/waiver-unknown-rule" ] (scan_rules unknown);
  let stale =
    "(* lint-waive: nondet/hashtbl-order — nothing below still needs this *)\n\
     let x = 1\n"
  in
  Alcotest.(check (list string))
    "stale in-source waiver" [ "lint/waiver-unused" ] (scan_rules stale)

let test_lint_file_waivers () =
  let waivers, probs =
    Sanlint.parse_waivers
      "# comment\n\
       nondet/hashtbl-order synt/ grouped results are order-canonical downstream\n\
       short x y\n"
  in
  Alcotest.(check int) "one parsed waiver" 1 (List.length waivers);
  Alcotest.(check int) "one malformed line reported" 1 (List.length probs);
  let src = "let () = Hashtbl.iter f x\n" in
  let findings, suppressed = Sanlint.scan_file ~waivers ~path:"synt/x.ml" src in
  Alcotest.(check int) "file waiver suppresses" 0 (List.length findings);
  Alcotest.(check int) "suppression recorded" 1 (List.length suppressed);
  Alcotest.(check int) "waiver counted as used" 1
    (List.length (Sanlint.used_waivers ~waivers suppressed));
  (* same waiver against a file it does not match: unused *)
  let _, untouched = Sanlint.scan_file ~waivers ~path:"other/y.ml" "let x = 1\n" in
  Alcotest.(check int) "no suppression elsewhere" 0 (List.length untouched)

(* --- waiver hygiene audit --------------------------------------------------------- *)

(* The repo's LINT_WAIVERS must parse clean and name only rules some lint
   head can still evaluate — an entry for a retired rule is dead weight.
   Staleness proper (an entry that suppresses nothing) is enforced by the
   two `dune runtest` lint gates, which scan the real tree. *)
let test_lint_waivers_audit () =
  let ic = open_in "../LINT_WAIVERS" in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  let waivers, probs = Sanlint.parse_waivers body in
  Alcotest.(check (list string))
    "LINT_WAIVERS parses without findings" []
    (List.map (fun f -> f.Sanitize.rule_id) probs);
  let known = Sanlint.rule_ids @ Typedlint.rule_ids in
  List.iter
    (fun w ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s is evaluable by a lint head" w.Sanlint.w_rule)
        true
        (List.mem w.Sanlint.w_rule known);
      Alcotest.(check bool)
        (Printf.sprintf "justification for %s is substantial" w.Sanlint.w_rule)
        true
        (String.length w.Sanlint.w_reason >= Lint_common.min_reason_len))
    waivers

let () =
  Alcotest.run "sanitize"
    [ ( "mutations",
        [ Alcotest.test_case "dropped fence" `Quick test_dropped_fence;
          Alcotest.test_case "double write" `Quick test_double_write;
          Alcotest.test_case "unseen ids exempt" `Quick
            test_pub_unseen_ids_exempt;
          Alcotest.test_case "lock cycle (one domain)" `Quick
            test_lock_cycle_single_domain;
          Alcotest.test_case "lock cycle (two domains)" `Quick
            test_lock_cycle_across_domains;
          Alcotest.test_case "try_lock edges" `Quick test_try_lock_participates;
          Alcotest.test_case "future double claim" `Quick
            test_future_double_claim;
          Alcotest.test_case "future foreign done" `Quick
            test_future_foreign_done;
          Alcotest.test_case "dls cross scope" `Quick test_dls_cross_scope ] );
      ( "reporting",
        [ Alcotest.test_case "dedup + render" `Quick
            test_findings_deduped_and_rendered;
          Alcotest.test_case "empty json" `Quick test_render_json_empty;
          Alcotest.test_case "disabled is silent" `Quick
            test_disabled_is_silent ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_no_false_positives ] );
      ( "integration",
        [ Alcotest.test_case "sched+bdd under sanitizer" `Quick
            test_real_flow_clean ] );
      ( "lint",
        [ Alcotest.test_case "rules fire" `Quick test_lint_rules_fire;
          Alcotest.test_case "exemptions" `Quick test_lint_exemptions;
          Alcotest.test_case "stripping" `Quick test_lint_strip;
          Alcotest.test_case "in-source waivers" `Quick
            test_lint_waivers_in_source;
          Alcotest.test_case "file waivers" `Quick test_lint_file_waivers;
          Alcotest.test_case "repo waiver audit" `Quick
            test_lint_waivers_audit ] )
    ]
