(* Simulation and equivalence-checking tests. *)

module N = Netlist.Network
module S = Sim.Simulate

let xor_cover = Logic.Cover.of_strings 2 [ "10"; "01" ]
let and_cover = Logic.Cover.of_strings 2 [ "11" ]

(* Toggle FF: r' = r xor en, out = r *)
let toggle () =
  let net = N.create ~name:"toggle" () in
  let en = N.add_input net "en" in
  let r = N.add_latch net ~name:"r" N.I0 en in
  let next = N.add_logic net ~name:"next" xor_cover [ en; r ] in
  N.replace_fanin net r ~old_fanin:en ~new_fanin:next;
  N.set_output net "out" r;
  net

(* 2-bit binary counter with synchronous reset to 00.
   b0' = rst' * (b0 xor 1) = rst' * b0'; b1' = rst' * (b1 xor b0). *)
let counter2 () =
  let net = N.create ~name:"counter2" () in
  let rst = N.add_input net "rst" in
  let b0 = N.add_latch net ~name:"b0" N.Ix rst in
  let b1 = N.add_latch net ~name:"b1" N.Ix rst in
  (* next b0 = not rst and not b0 *)
  let n0 =
    N.add_logic net ~name:"n0" (Logic.Cover.of_strings 2 [ "00" ]) [ rst; b0 ]
  in
  (* next b1 = not rst and (b1 xor b0) *)
  let x = N.add_logic net ~name:"x" xor_cover [ b1; b0 ] in
  let n1 =
    N.add_logic net ~name:"n1" (Logic.Cover.of_strings 2 [ "01" ]) [ rst; x ]
  in
  N.replace_fanin net b0 ~old_fanin:rst ~new_fanin:n0;
  N.replace_fanin net b1 ~old_fanin:rst ~new_fanin:n1;
  N.set_output net "c0" b0;
  N.set_output net "c1" b1;
  net

let test_step_sequence () =
  let net = toggle () in
  let state = S.binary_initial_state net in
  let always_on _ = true in
  let s1, o1 = S.step net ~pi:always_on ~state in
  Alcotest.(check bool) "out cycle 1 = init 0" false (List.assoc "out" o1);
  let s2, o2 = S.step net ~pi:always_on ~state:s1 in
  Alcotest.(check bool) "out cycle 2 = 1" true (List.assoc "out" o2);
  let _, o3 = S.step net ~pi:always_on ~state:s2 in
  Alcotest.(check bool) "out cycle 3 = 0" false (List.assoc "out" o3)

let test_run () =
  let net = toggle () in
  let vectors = List.init 4 (fun _ _name -> true) in
  let _, outs = S.run net (S.binary_initial_state net) vectors in
  let bits = List.map (fun o -> List.assoc "out" o) outs in
  Alcotest.(check (list bool)) "toggling" [ false; true; false; true ] bits

let test_three_valued_x_propagation () =
  let net = toggle () in
  let all_x = List.map (fun l -> (l.N.id, S.Tx)) (N.latches net) in
  let _, outs = S.step3 net ~pi:(fun _ -> S.T1) ~state:all_x in
  Alcotest.(check bool) "unknown output" true
    (S.tri_equal (List.assoc "out" outs) S.Tx)

let test_three_valued_controlling () =
  (* AND with a controlling 0 input must give 0 even with X. *)
  let net = N.create () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.Ix a in
  let g = N.add_logic net ~name:"g" and_cover [ a; r ] in
  N.set_output net "o" g;
  let state = [ (r.N.id, S.Tx) ] in
  let _, outs = S.step3 net ~pi:(fun _ -> S.T0) ~state in
  Alcotest.(check bool) "0 dominates X" true
    (S.tri_equal (List.assoc "o" outs) S.T0)

let test_synchronizing_sequence () =
  let net = counter2 () in
  match S.synchronizing_sequence ~seed:42 net with
  | None -> Alcotest.fail "counter with reset must be synchronizable"
  | Some seq ->
    (* replaying the sequence from all-X must give a binary state *)
    let all_x = List.map (fun l -> (l.N.id, S.Tx)) (N.latches net) in
    let final =
      List.fold_left
        (fun st pi ->
          let tri_pi name = S.tri_of_bool (pi name) in
          fst (S.step3 net ~pi:tri_pi ~state:st))
        all_x seq
    in
    Alcotest.(check bool) "all binary" true
      (List.for_all (fun (_, v) -> not (S.tri_equal v S.Tx)) final)

let test_no_synchronizing_sequence () =
  (* A free-running toggle FF with no inputs controlling it cannot be
     synchronized structurally. *)
  let net = N.create () in
  let a = N.add_input net "a" in
  let r = N.add_latch net ~name:"r" N.Ix a in
  let inv = N.add_logic net ~name:"inv" (Logic.Cover.of_strings 1 [ "0" ]) [ r ] in
  N.replace_fanin net r ~old_fanin:a ~new_fanin:inv;
  N.set_output net "o" r;
  Alcotest.(check bool) "not synchronizable" true
    (S.synchronizing_sequence ~seed:7 ~attempts:8 ~max_len:16 net = None)

let test_vcd_dump () =
  let net = toggle () in
  let vectors = List.init 4 (fun _ _ -> true) in
  let text = Sim.Vcd.dump net ~vectors in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "definitions" true (contains "$enddefinitions");
  Alcotest.(check bool) "en declared" true (contains "$var wire 1 ! en $end");
  Alcotest.(check bool) "has timesteps" true (contains "#3");
  (* the register toggles, so its code must appear with both values *)
  Alcotest.(check bool) "r rises" true (contains "1\"");
  Alcotest.(check bool) "r falls" true (contains "0\"")

(* --- equivalence ------------------------------------------------------------ *)

let test_seq_equal_bdd_positive () =
  let a = toggle () and b = toggle () in
  Alcotest.(check bool) "identical copies equal" true (Sim.Equiv.seq_equal_bdd a b)

let test_seq_equal_bdd_negative () =
  let a = toggle () in
  let b = toggle () in
  (* flip b's initial state: observable in the first cycle *)
  let r = match N.find_by_name b "r" with Some n -> n | None -> assert false in
  N.set_latch_init b r N.I1;
  Alcotest.(check bool) "different init detected" false
    (Sim.Equiv.seq_equal_bdd a b)

let test_seq_equal_bdd_retimed_style () =
  (* A circuit and a version with a duplicated (equivalent) register must be
     sequentially equivalent: this is exactly the paper's fanout-stem
     transformation. *)
  let a = toggle () in
  let b = N.create ~name:"toggle" () in
  let en = N.add_input b "en" in
  let r1 = N.add_latch b ~name:"r" N.I0 en in
  let r2 = N.add_latch b ~name:"r2" N.I0 en in
  (* next value computed from r1, loaded into both registers *)
  let next = N.add_logic b ~name:"next" xor_cover [ en; r1 ] in
  N.replace_fanin b r1 ~old_fanin:en ~new_fanin:next;
  N.replace_fanin b r2 ~old_fanin:en ~new_fanin:next;
  (* output reads the duplicate *)
  N.set_output b "out" r2;
  Alcotest.(check bool) "register duplication is sound" true
    (Sim.Equiv.seq_equal_bdd a b)

let test_seq_equal_random_positive () =
  let a = toggle () and b = toggle () in
  Alcotest.(check bool) "random cosim equal" true
    (Sim.Equiv.seq_equal_random ~seed:3 a b)

let test_seq_equal_random_negative () =
  let a = toggle () in
  let b = toggle () in
  let next = match N.find_by_name b "next" with Some n -> n | None -> assert false in
  N.set_cover b next (Logic.Cover.of_strings 2 [ "1-" ]);
  Alcotest.(check bool) "behaviour change detected" false
    (Sim.Equiv.seq_equal_random ~seed:3 a b)

let test_delayed_replacement () =
  (* A register with initial value 0 vs the same register with initial value
     1: outputs differ in the first cycle only, so the machines are not
     equivalent but are 1-delayed equivalent (Singhal et al.'s delayed
     replacement, paper Section II). *)
  let build init =
    let net = N.create ~name:"d" () in
    let a = N.add_input net "a" in
    let r = N.add_latch net ~name:"r" init a in
    N.set_output net "o" r;
    net
  in
  let z = build N.I0 and o = build N.I1 in
  Alcotest.(check bool) "not equivalent" false (Sim.Equiv.seq_equal_bdd z o);
  Alcotest.(check bool) "1-delayed equivalent" true
    (Sim.Equiv.seq_equal_delayed ~k:1 z o);
  Alcotest.(check bool) "0-delay is plain equivalence" false
    (Sim.Equiv.seq_equal_delayed ~k:0 z o)

let test_delayed_replacement_stem_with_mixed_inits () =
  (* Splitting a fanout stem while giving the copies different initial
     values is NOT behaviour-preserving, but it is delayed-replacement-safe
     after one cycle (both copies load the shared data input).  This is the
     paper's Fig. 3 discussion. *)
  let original = N.create ~name:"m" () in
  let a = N.add_input original "a" in
  let r = N.add_latch original ~name:"r" N.I0 a in
  let g1 = N.add_logic original ~name:"g1" (Logic.Cover.of_strings 1 [ "0" ]) [ r ] in
  let g2 = N.add_logic original ~name:"g2" (Logic.Cover.of_strings 1 [ "1" ]) [ r ] in
  N.set_output original "o1" g1;
  N.set_output original "o2" g2;
  let split = N.copy original in
  let r' = N.node split r.N.id in
  (match Retiming.Moves.split_stem split r' with
   | [ _; copy ] -> N.set_latch_init split copy N.I1 (* sabotage the initial value *)
   | _ -> Alcotest.fail "expected two copies");
  Alcotest.(check bool) "not equivalent with mixed inits" false
    (Sim.Equiv.seq_equal_bdd original split);
  Alcotest.(check bool) "but 1-delayed equivalent" true
    (Sim.Equiv.seq_equal_delayed ~k:1 original split)

let test_comb_equal_sat_agrees () =
  let ok = ref true in
  for seed = 0 to 30 do
    let net =
      Circuits.Generators.random_sequential ~seed
        { Circuits.Generators.default_profile with
          ngates = 10;
          nlatch = 2;
          npi = 3 }
    in
    N.sweep net;
    let mutated = N.copy net in
    (* mutate one random node in half the cases *)
    if seed mod 2 = 0 then begin
      match N.logic_nodes mutated with
      | [] -> ()
      | n :: _ ->
        let c = N.cover_of n in
        let flipped = Logic.Cover.complement c in
        N.set_cover mutated n flipped
    end;
    let expected = Sim.Equiv.comb_equal_exhaustive net mutated in
    let got = Sim.Equiv.comb_equal_sat net mutated in
    if expected <> got then ok := false
  done;
  Alcotest.(check bool) "sat CEC agrees with exhaustive" true !ok

let prop_bdd_equals_random_verdict =
  QCheck.Test.make ~count:20 ~name:"bdd and random checks agree on copies"
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let net =
        Circuits.Generators.random_sequential ~seed
          { Circuits.Generators.default_profile with
            ngates = 8;
            nlatch = 3;
            npi = 2 }
      in
      N.sweep net;
      let dup = N.copy net in
      Sim.Equiv.seq_equal_bdd net dup
      && Sim.Equiv.seq_equal_random ~seed ~vectors:8 ~length:32 net dup)

let () =
  Alcotest.run "sim"
    [ ( "simulate",
        [ Alcotest.test_case "step sequence" `Quick test_step_sequence;
          Alcotest.test_case "run" `Quick test_run;
          Alcotest.test_case "x propagation" `Quick
            test_three_valued_x_propagation;
          Alcotest.test_case "controlling value" `Quick
            test_three_valued_controlling;
          Alcotest.test_case "synchronizing sequence" `Quick
            test_synchronizing_sequence;
          Alcotest.test_case "unsynchronizable" `Quick
            test_no_synchronizing_sequence;
          Alcotest.test_case "vcd dump" `Quick test_vcd_dump ] );
      ( "equiv",
        [ Alcotest.test_case "bdd positive" `Quick test_seq_equal_bdd_positive;
          Alcotest.test_case "bdd negative" `Quick test_seq_equal_bdd_negative;
          Alcotest.test_case "register duplication" `Quick
            test_seq_equal_bdd_retimed_style;
          Alcotest.test_case "random positive" `Quick
            test_seq_equal_random_positive;
          Alcotest.test_case "random negative" `Quick
            test_seq_equal_random_negative;
          Alcotest.test_case "delayed replacement" `Quick
            test_delayed_replacement;
          Alcotest.test_case "delayed stem split" `Quick
            test_delayed_replacement_stem_with_mixed_inits;
          Alcotest.test_case "sat cec agreement" `Slow
            test_comb_equal_sat_agrees ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_bdd_equals_random_verdict ]
      ) ]
