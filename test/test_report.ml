(* Table I rendering and summary tests (pure formatting logic). *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let stats regs clk area = { Core.Flow.regs; clk; area }

let attempt ?(note = "") ?(verified = true) stats =
  { Core.Flow.stats; note; verified }

let row name base retimed resynthesized =
  { Core.Flow.circuit = name;
    base;
    retimed;
    resynthesized;
    resynth_outcome = None;
    eqcheck = [];
    verify_diags = [] }

let sample_rows =
  [ row "alpha" (stats 10 5.0 100.0)
      (attempt (Some (stats 12 4.0 120.0)))
      (attempt (Some (stats 11 3.5 110.0)));
    row "beta" (stats 6 3.0 60.0)
      (attempt ~note:"no retiming achieves the target period" None)
      (attempt (Some (stats 6 2.5 66.0)));
    row "gamma" (stats 4 2.0 40.0)
      (attempt (Some (stats 4 2.0 44.0)))
      (attempt ~note:"critical path has no retimable gates" None) ]

let test_row_format () =
  let line = Report.Table.row_to_string (List.nth sample_rows 0) in
  Alcotest.(check bool) "has name" true
    (String.length line > 5 && String.sub line 0 5 = "alpha");
  (* three groups of three numeric cells *)
  Alcotest.(check bool) "mentions 3.50" true
    (contains line "3.50")

let test_row_dashes_on_failure () =
  let line = Report.Table.row_to_string (List.nth sample_rows 1) in
  Alcotest.(check bool) "dashes for failed flow" true
    (contains line "-")

let test_render_footnotes () =
  let text = Report.Table.render sample_rows in
  Alcotest.(check bool) "retiming failure noted" true
    (contains text "no retiming achieves the target period");
  Alcotest.(check bool) "resynthesis decline noted" true
    (contains text "no retimable gates")

let test_summary_counts () =
  let text = Report.Table.summary sample_rows in
  Alcotest.(check bool) "rows: 3" true (contains text "rows: 3");
  Alcotest.(check bool) "retiming failed: 1" true
    (contains text "retiming failed: 1");
  Alcotest.(check bool) "resynthesis declined: 1" true
    (contains text "resynthesis declined: 1")

let test_summary_ratios () =
  (* only alpha has both flows: reg ratio 11/12, clk 3.5/4.0, area 110/120 *)
  let text = Report.Table.summary sample_rows in
  Alcotest.(check bool) "reg ratio 0.917" true
    (contains text "0.917");
  Alcotest.(check bool) "clk ratio 0.875" true
    (contains text "0.875")

let test_run_suite_subset () =
  let rows = Report.Table.run_suite ~verify:false ~names:[ "s27" ] () in
  Alcotest.(check int) "one row" 1 (List.length rows);
  Alcotest.(check string) "named" "s27" (List.hd rows).Core.Flow.circuit

(* The domain-parallel runner must be invisible in the output: the rendered
   table and summary for any [jobs] value are byte-identical to a serial
   run. *)
let test_run_suite_jobs_deterministic () =
  let names = [ "ex2"; "bbtas"; "s27"; "s208" ] in
  let render jobs =
    let rows = Report.Table.run_suite ~verify:false ~names ~jobs () in
    Report.Table.render rows ^ Report.Table.summary rows
  in
  let serial = render 1 in
  Alcotest.(check string) "jobs=4 matches serial" serial (render 4);
  Alcotest.(check string) "jobs=2 matches serial" serial (render 2)

(* Same invariant with the intra-row task sources all on: the per-pass
   semantic equivalence analyzer forks a chained boundary check per pass
   (every worker domain runs eqcheck scopes against the shared BDD table),
   --verify-each forks the verifier's rule groups at every boundary, and
   the two verification lanes run as stolen tasks.  The table, the verdict
   stream and the verifier diagnostics must still be byte-identical to the
   serial run.  Per-record check durations are wall-clock and excluded;
   each verdict itself (including the Unknown reason, which embeds BDD
   node budgets) must match. *)
let test_run_suite_jobs_deterministic_eqcheck () =
  let names = [ "s27"; "s208"; "s298" ] in
  let render jobs =
    let rows =
      Report.Table.run_suite ~verify:false ~verify_each:true
        ~eqcheck_each:true ~names ~jobs ()
    in
    let verdicts =
      List.map
        (fun r ->
          match r.Eqcheck.verdict with
          | Eqcheck.Proved -> "proved"
          | Eqcheck.Refuted _ -> "refuted"
          | Eqcheck.Unknown reason -> "unknown: " ^ reason)
        (Report.Table.eqcheck_records rows)
    in
    let diags =
      String.concat ""
        (List.map (fun r -> Verify.render r.Core.Flow.verify_diags) rows)
    in
    Report.Table.render rows ^ Report.Table.summary rows
    ^ Report.Table.eqcheck_summary rows
    ^ String.concat "\n" verdicts ^ diags
  in
  let serial = render 1 in
  Alcotest.(check string)
    "jobs=4 matches serial (eqcheck-each + verify-each)" serial (render 4)

let test_parallel_map () =
  let items = Array.init 57 Fun.id in
  let square x = x * x in
  Alcotest.(check (array int))
    "parallel map = serial map"
    (Array.map square items)
    (Core.Parallel.map ~jobs:4 square items);
  (* deterministic failure: the lowest-indexed raiser wins *)
  match
    Core.Parallel.map ~jobs:4
      (fun x -> if x >= 10 then failwith (string_of_int x) else x)
      items
  with
  | _ -> Alcotest.fail "expected Worker_failure"
  | exception Core.Parallel.Worker_failure (i, Failure msg) ->
    Alcotest.(check int) "lowest failing index" 10 i;
    Alcotest.(check string) "original exception" "10" msg
  | exception e -> raise e

let () =
  Alcotest.run "report"
    [ ( "table",
        [ Alcotest.test_case "row format" `Quick test_row_format;
          Alcotest.test_case "failure dashes" `Quick test_row_dashes_on_failure;
          Alcotest.test_case "footnotes" `Quick test_render_footnotes;
          Alcotest.test_case "summary counts" `Quick test_summary_counts;
          Alcotest.test_case "summary ratios" `Quick test_summary_ratios;
          Alcotest.test_case "run subset" `Quick test_run_suite_subset;
          Alcotest.test_case "jobs determinism" `Quick
            test_run_suite_jobs_deterministic;
          Alcotest.test_case "jobs determinism (eqcheck-each)" `Quick
            test_run_suite_jobs_deterministic_eqcheck;
          Alcotest.test_case "parallel map" `Quick test_parallel_map ] ) ]
