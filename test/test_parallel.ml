(* Core.Parallel scheduler: byte-determinism under adversarial task
   durations, nested fork/join, steal stress across two domains, and
   failure/backtrace semantics.  All expectations are against the jobs=1
   run, which is serial program order by construction. *)

module P = Core.Parallel

(* Deterministic pseudo-work: spin for [n] iterations so task durations are
   data-dependent and uneven, which is what provokes steals and reordering
   at jobs > 1.  Returns a value derived from the spinning so the loop is
   not optimised away. *)
let busy n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc * 31) + i
  done;
  !acc land 0xffff

let jobs_grid = [ 1; 2; 4 ]

(* --- map determinism under adversarial durations ------------------------------ *)

let test_map_deterministic_adversarial () =
  (* Durations drawn from a fixed LCG: a mix of near-zero and heavy tasks,
     heaviest first and last (worst case for a greedy splitter). *)
  let lcg = ref 12345 in
  let next () =
    lcg := ((!lcg * 1103515245) + 12345) land 0x3fffffff;
    !lcg
  in
  let items =
    Array.init 97 (fun i ->
        let d = if i mod 7 = 0 then 20000 + (next () mod 30000) else next () mod 50 in
        (i, d))
  in
  let f (i, d) = (i * 2) + busy d in
  let expect = Array.map f items in
  List.iter
    (fun jobs ->
      let got = P.map ~jobs f items in
      Alcotest.(check (array int))
        (Printf.sprintf "map jobs=%d matches serial" jobs)
        expect got)
    jobs_grid

(* --- nested fork/join determinism --------------------------------------------- *)

(* Each item forks a small tree of subtasks with uneven spins; joins are in
   program order, so the combined value must be scheduling-independent. *)
let nested_item (i, d) =
  let a = P.fork (fun () -> busy d + i) in
  let b =
    P.fork (fun () ->
        let inner = P.fork (fun () -> busy (d / 2) + (2 * i)) in
        busy (d mod 97) + P.join inner)
  in
  let c = busy (d mod 31) in
  P.join a + (3 * P.join b) + c

let test_nested_fork_join_deterministic () =
  let items = Array.init 41 (fun i -> (i, 100 + (i * i * 37 mod 9000))) in
  let expect = Array.map nested_item items in
  List.iter
    (fun jobs ->
      let got = P.map ~jobs nested_item items in
      Alcotest.(check (array int))
        (Printf.sprintf "nested jobs=%d matches serial" jobs)
        expect got)
    jobs_grid

(* --- qcheck: random durations, random nesting --------------------------------- *)

let test_qcheck_determinism =
  let gen =
    QCheck.(
      list_of_size Gen.(int_range 0 60)
        (pair (int_range 0 5000) (int_range 0 3)))
  in
  QCheck.Test.make ~count:25 ~name:"parallel map deterministic (random durations)"
    gen (fun spec ->
      let items = Array.of_list spec in
      let f (d, depth) =
        (* fork a chain [depth] deep; each level spins its own amount *)
        let rec chain k =
          if k = 0 then busy d
          else
            let sub = P.fork (fun () -> chain (k - 1)) in
            busy (d mod 53) + P.join sub
        in
        chain depth
      in
      let expect = P.map ~jobs:1 f items in
      let p2 = P.map ~jobs:2 f items in
      let p4 = P.map ~jobs:4 f items in
      expect = p2 && expect = p4)

(* --- steal stress: many tiny tasks, two domains -------------------------------- *)

let test_steal_stress () =
  let n = 1000 in
  let items = Array.init n (fun i -> i) in
  let f i =
    (* tiny nested fork per item keeps both deques churning *)
    let sub = P.fork (fun () -> i + 1) in
    P.join sub + busy (i mod 17)
  in
  let expect = P.map ~jobs:1 f items in
  for _ = 1 to 5 do
    let got = P.map ~jobs:2 f items in
    Alcotest.(check (array int)) "steal stress jobs=2 deterministic" expect got
  done

(* --- failure semantics ---------------------------------------------------------- *)

let test_nested_failure_lowest_index () =
  (* items 13 and 29 fail (13 inside a nested fork); map must surface the
     lowest index regardless of which domain hits its failure first *)
  let f i =
    if i = 29 then failwith "direct-29";
    let sub =
      P.fork (fun () -> if i = 13 then failwith "nested-13" else i)
    in
    P.join sub
  in
  List.iter
    (fun jobs ->
      match P.map ~jobs f (Array.init 57 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Worker_failure"
      | exception P.Worker_failure (i, Failure msg) ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failing index at jobs=%d" jobs)
          13 i;
        Alcotest.(check string) "nested exception surfaced" "nested-13" msg
      | exception e -> raise e)
    jobs_grid

let test_join_result_reifies_failure () =
  P.run ~jobs:2 (fun () ->
      let ok = P.fork (fun () -> 7) in
      let bad = P.fork (fun () -> failwith "boom") in
      Alcotest.(check int) "ok future" 7 (P.join ok);
      (match P.join_result bad with
       | Ok _ -> Alcotest.fail "expected Error"
       | Error (Failure m, bt) ->
         Alcotest.(check string) "exn carried" "boom" m;
         (* backtrace object is captured (may be empty without -g at runtime,
            but the slot must exist and re-raising must not mask the exn) *)
         ignore (Printexc.raw_backtrace_to_string bt)
       | Error (e, _) -> raise e);
      (* joining the same future again is stable *)
      match P.join_result bad with
      | Error (Failure m, _) -> Alcotest.(check string) "stable" "boom" m
      | _ -> Alcotest.fail "expected stable Error")

let () =
  Alcotest.run "parallel"
    [ ( "determinism",
        [ Alcotest.test_case "adversarial durations" `Quick
            test_map_deterministic_adversarial;
          Alcotest.test_case "nested fork/join" `Quick
            test_nested_fork_join_deterministic;
          QCheck_alcotest.to_alcotest test_qcheck_determinism ] );
      ( "stress",
        [ Alcotest.test_case "two-domain steal stress" `Quick
            test_steal_stress ] );
      ( "failures",
        [ Alcotest.test_case "nested lowest-index failure" `Quick
            test_nested_failure_lowest_index;
          Alcotest.test_case "join_result reifies + stable" `Quick
            test_join_result_reifies_failure ] ) ]
