(* Repo-wide nondeterminism & memory-model lint driver.

   Usage: lint [--waivers FILE] [--json FILE] PATH...

   Walks every PATH (directories recurse) collecting .ml files, runs the
   Sanitize.Lint rule engine on each, and exits non-zero if any unwaivered
   finding survives — including unjustified or stale waivers, so the
   waiver set can only shrink.  Run by CI and by `dune runtest` (see the
   root dune file); the rule inventory is documented in DESIGN.md §14. *)

let () =
  let waivers_file = ref None in
  let json_out = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--waivers" :: f :: rest ->
      waivers_file := Some f;
      parse rest
    | "--json" :: f :: rest ->
      json_out := Some f;
      parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      paths := arg :: !paths;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "lint: unknown argument %s\nusage: lint [--waivers FILE] [--json \
         FILE] PATH...\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline "lint: no paths given";
    exit 2
  end;
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let waivers, waiver_probs =
    match !waivers_file with
    | None -> ([], [])
    | Some f -> Sanlint.parse_waivers (read_file f)
  in
  (* gather .ml files, sorted for a deterministic report *)
  let rec gather acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry -> gather acc (Filename.concat path entry))
        acc
        (let es = Sys.readdir path in
         Array.sort compare es;
         es)
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  let files = List.rev (List.fold_left gather [] paths) in
  let findings, suppressed =
    List.fold_left
      (fun (facc, sacc) path ->
        let fs, sup =
          Sanlint.scan_file ~waivers ~path (read_file path)
        in
        (facc @ fs, sacc @ sup))
      (waiver_probs, [])
      files
  in
  (* a LINT_WAIVERS entry that suppresses nothing is stale: report it *)
  let used = Sanlint.used_waivers ~waivers suppressed in
  let stale =
    List.filter_map
      (fun w ->
        if List.memq w used then None
        else
          Some
            Sanitize.
              { rule_id = "lint/waiver-unused";
                severity = Error;
                sites = [ Printf.sprintf "LINT_WAIVERS(%s)" w.Sanlint.w_path ];
                message =
                  Printf.sprintf
                    "file waiver for %s on %S suppresses nothing — remove \
                     it"
                    w.Sanlint.w_rule w.Sanlint.w_path })
      waivers
  in
  let findings = findings @ stale in
  (match !json_out with
   | Some f ->
     let oc = open_out f in
     output_string oc (Sanitize.render_json findings);
     output_char oc '\n';
     close_out oc
   | None -> ());
  if findings <> [] then begin
    print_endline (Sanitize.render findings);
    Printf.printf "lint: %d finding(s) in %d file(s) scanned\n"
      (List.length findings) (List.length files);
    exit 1
  end
  else
    Printf.printf "lint: clean — %d file(s), %d rule(s), %d waived site(s)\n"
      (List.length files)
      (List.length Sanlint.rule_ids)
      (List.length suppressed)
