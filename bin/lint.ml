(* Repo-wide static sanitizer driver: two lint heads, one waiver
   discipline.

   Usage: lint [--typed] [--waivers FILE] [--json FILE] [--typed-json FILE]
               [--metrics-json FILE] [--source-root DIR] PATH...

   Default mode walks every PATH (directories recurse) collecting .ml
   files and runs the substring rule engine (Sanlint).  With --typed it
   instead collects .cmt files under the PATHs (the repo builds with
   -bin-annot; run from the build root so the .objs directories are in
   reach) and runs the typed-AST analyzer (Typedlint): capture/escape,
   lock-discipline, module-escape and blocking-in-task.

   Either way the driver exits non-zero if any unwaivered finding
   survives — including unjustified or stale waivers, so the waiver set
   can only shrink.  A LINT_WAIVERS entry is judged for staleness only by
   the head that owns its rule: typed/* entries by the typed head,
   everything else by the substring head.  Run by CI and by `dune
   runtest` (see the root dune file); rules are documented in DESIGN.md
   §14 (substring) and §15 (typed). *)

let usage =
  "usage: lint [--typed] [--waivers FILE] [--json FILE] [--typed-json \
   FILE]\n            [--metrics-json FILE] [--source-root DIR] PATH...\n"

let () =
  let typed = ref false in
  let waivers_file = ref None in
  let json_out = ref None in
  let typed_json_out = ref None in
  let metrics_out = ref None in
  let source_root = ref "." in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--typed" :: rest ->
      typed := true;
      parse rest
    | "--waivers" :: f :: rest ->
      waivers_file := Some f;
      parse rest
    | "--json" :: f :: rest ->
      json_out := Some f;
      parse rest
    | "--typed-json" :: f :: rest ->
      typed_json_out := Some f;
      parse rest
    | "--metrics-json" :: f :: rest ->
      metrics_out := Some f;
      parse rest
    | "--source-root" :: d :: rest ->
      source_root := d;
      parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      paths := arg :: !paths;
      parse rest
    | arg :: _ ->
      Printf.eprintf "lint: unknown argument %s\n%s" arg usage;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline "lint: no paths given";
    exit 2
  end;
  if (!typed_json_out <> None || !metrics_out <> None) && not !typed then begin
    prerr_endline "lint: --typed-json/--metrics-json require --typed";
    exit 2
  end;
  let read_file path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let write_file path s =
    let oc = open_out path in
    output_string oc s;
    output_char oc '\n';
    close_out oc
  in
  let waivers, waiver_probs =
    match !waivers_file with
    | None -> ([], [])
    | Some f -> Sanlint.parse_waivers (read_file f)
  in
  (* gather files by suffix, sorted for a deterministic report *)
  let rec gather suffix acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry -> gather suffix acc (Filename.concat path entry))
        acc
        (let es = Sys.readdir path in
         Array.sort compare es;
         es)
    else if Filename.check_suffix path suffix then path :: acc
    else acc
  in
  (* which rule families does this invocation evaluate?  Only their file
     waivers can be judged stale here. *)
  let evaluable rule =
    if !typed then List.mem rule Typedlint.rule_ids
    else List.mem rule Sanlint.rule_ids
  in
  let findings, suppressed, files_scanned, line_waived =
    if !typed then begin
      let cmts = List.rev (List.fold_left (gather ".cmt") [] paths) in
      let config =
        { Typedlint.default_config with source_root = !source_root }
      in
      let r = Typedlint.scan_cmt_files ~config ~waivers cmts in
      if r.Typedlint.files_scanned = 0 then begin
        Printf.eprintf
          "lint: no .cmt implementation units under %s — build with \
           -bin-annot first (dune emits them; run from the build root)\n"
          (String.concat " " paths);
        exit 2
      end;
      (match !metrics_out with
       | Some f ->
         Obs.Metrics.enable ();
         Typedlint.publish_stats r;
         write_file f (Obs.Export.metrics_json ~prefix:"typedlint" ())
       | None -> ());
      (match !typed_json_out with
       | Some f -> write_file f (Sanitize.render_json r.Typedlint.findings)
       | None -> ());
      ( r.Typedlint.findings @ waiver_probs,
        r.Typedlint.suppressed,
        r.Typedlint.files_scanned,
        r.Typedlint.waivers_honored )
    end
    else begin
      let files = List.rev (List.fold_left (gather ".ml") [] paths) in
      let findings, suppressed =
        List.fold_left
          (fun (facc, sacc) path ->
            let fs, sup =
              Sanlint.scan_file ~foreign_rules:Typedlint.rule_ids ~waivers
                ~path (read_file path)
            in
            (facc @ fs, sacc @ sup))
          (waiver_probs, [])
          files
      in
      (findings, suppressed, List.length files, 0)
    end
  in
  (* a LINT_WAIVERS entry that suppresses nothing is stale: report it —
     but only for rules this invocation actually evaluated *)
  let used = Sanlint.used_waivers ~waivers suppressed in
  let stale =
    List.filter_map
      (fun w ->
        if (not (evaluable w.Sanlint.w_rule)) || List.memq w used then None
        else
          Some
            Sanitize.
              { rule_id = "lint/waiver-unused";
                severity = Error;
                sites = [ Printf.sprintf "LINT_WAIVERS(%s)" w.Sanlint.w_path ];
                message =
                  Printf.sprintf
                    "file waiver for %s on %S suppresses nothing — remove \
                     it"
                    w.Sanlint.w_rule w.Sanlint.w_path })
      waivers
  in
  let findings = findings @ stale in
  (match !json_out with
   | Some f -> write_file f (Sanitize.render_json findings)
   | None -> ());
  let head = if !typed then "lint --typed" else "lint" in
  if findings <> [] then begin
    print_endline (Sanitize.render findings);
    Printf.printf "%s: %d finding(s) in %d file(s) scanned\n" head
      (List.length findings) files_scanned;
    exit 1
  end
  else
    Printf.printf "%s: clean — %d file(s), %d rule(s), %d waived site(s)\n"
      head files_scanned
      (List.length
         (if !typed then Typedlint.rule_ids else Sanlint.rule_ids))
      (List.length suppressed + line_waived)
