(* Resynthesis-as-a-service daemon and its one-shot client.

   Usage:
     resynthd serve  (--socket PATH | --tcp HOST:PORT) [--jobs N]
                     [--queue N] [--max-netlist BYTES] [--timeout S]
                     [--stream-trace FILE]
     resynthd client (--socket PATH | --tcp HOST:PORT)
                     (--benchmark NAME | --blif FILE | --metrics
                      | --shutdown | --raw LINE)
                     [--id ID] [--no-verify] [--verify-each] [--eqcheck-each]
                     [--timeout S] [--poll S] [--no-drain] [--diagnostics]

   serve
   --socket PATH    listen on a Unix domain socket
   --tcp HOST:PORT  listen on a TCP socket
   --jobs N         fork-join pool size (default 2; 0 = one per core).
                    The event loop is worker 0; jobs >= 2 keeps the daemon
                    responsive while flows run
   --queue N        max in-flight requests before queue-full rejection
   --max-netlist B  inline-BLIF size cap in bytes
   --timeout S      default per-request deadline (seconds, fractional ok)
   --stream-trace F append every completed span to F as JSON lines

   client submits one request and reports the deterministic result: for a
   flow request it prints the Table I row line (byte-identical to the
   [table1] binary's row for the same circuit and options) on stdout.
   --diagnostics additionally prints the nondeterministic per-request
   accounting (elapsed time, metrics delta) to stderr.  --raw sends a
   preformatted protocol line and prints the raw response.

   Exit codes: 0 success; 1 request failed / cancelled / timed out /
   connection refused; 2 usage; 3 the daemon's sanitizer found races. *)

let usage () =
  prerr_endline
    "usage: resynthd serve  (--socket PATH | --tcp HOST:PORT) [--jobs N] \
     [--queue N]\n\
    \                       [--max-netlist BYTES] [--timeout S] \
     [--stream-trace FILE]\n\
    \       resynthd client (--socket PATH | --tcp HOST:PORT)\n\
    \                       (--benchmark NAME | --blif FILE | --metrics | \
     --shutdown | --raw LINE)\n\
    \                       [--id ID] [--no-verify] [--verify-each] \
     [--eqcheck-each]\n\
    \                       [--timeout S] [--poll S] [--no-drain] \
     [--diagnostics]";
  exit 2

let parse_endpoint sock tcp =
  match (sock, tcp) with
  | Some path, None -> Serve.Daemon.Unix_socket path
  | None, Some hostport ->
    (match String.rindex_opt hostport ':' with
     | Some i ->
       let host = String.sub hostport 0 i in
       let port = String.sub hostport (i + 1) (String.length hostport - i - 1) in
       (match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Serve.Daemon.Tcp (host, p)
        | Some _ | None ->
          prerr_endline "resynthd: --tcp expects HOST:PORT";
          exit 2)
     | None ->
       prerr_endline "resynthd: --tcp expects HOST:PORT";
       exit 2)
  | Some _, Some _ ->
    prerr_endline "resynthd: --socket and --tcp are mutually exclusive";
    exit 2
  | None, None ->
    prerr_endline "resynthd: an endpoint is required (--socket or --tcp)";
    exit 2

let pos_int flag s =
  match int_of_string_opt s with
  | Some v when v > 0 -> v
  | Some _ | None ->
    Printf.eprintf "resynthd: %s expects a positive integer\n" flag;
    exit 2

let pos_float flag s =
  match float_of_string_opt s with
  | Some v when v > 0.0 -> v
  | Some _ | None ->
    Printf.eprintf "resynthd: %s expects a positive number\n" flag;
    exit 2

(* --- serve mode --------------------------------------------------------------------- *)

let serve_main args =
  let sock = ref None and tcp = ref None in
  let jobs = ref 2 in
  let queue = ref None and max_netlist = ref None and timeout = ref None in
  let stream_trace = ref None in
  let rec parse = function
    | [] -> ()
    | "--socket" :: path :: rest -> sock := Some path; parse rest
    | "--tcp" :: hp :: rest -> tcp := Some hp; parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 0 -> jobs := j
       | Some _ | None ->
         prerr_endline "resynthd: --jobs expects a non-negative integer";
         exit 2);
      parse rest
    | "--queue" :: n :: rest -> queue := Some (pos_int "--queue" n); parse rest
    | "--max-netlist" :: n :: rest ->
      max_netlist := Some (pos_int "--max-netlist" n);
      parse rest
    | "--timeout" :: s :: rest ->
      timeout := Some (pos_float "--timeout" s);
      parse rest
    | "--stream-trace" :: file :: rest ->
      stream_trace := Some file;
      parse rest
    | arg :: _ ->
      Printf.eprintf "resynthd: unknown serve argument %s\n" arg;
      usage ()
  in
  parse args;
  let endpoint = parse_endpoint !sock !tcp in
  let jobs = if !jobs = 0 then Core.Parallel.default_jobs () else !jobs in
  let d = Serve.Engine.default_config in
  let config =
    { Serve.Engine.queue_capacity =
        Option.value ~default:d.Serve.Engine.queue_capacity !queue;
      max_netlist_bytes =
        Option.value ~default:d.Serve.Engine.max_netlist_bytes !max_netlist;
      default_timeout_s =
        (match !timeout with
         | Some _ as t -> t
         | None -> d.Serve.Engine.default_timeout_s);
      retry_after_ms = d.Serve.Engine.retry_after_ms }
  in
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  let ready () =
    Printf.printf "resynthd: listening on %s (jobs %d)\n"
      (Serve.Daemon.endpoint_to_string endpoint)
      jobs;
    flush stdout
  in
  Serve.Daemon.run ~config ~jobs ?stream_trace:!stream_trace ~stop ~ready
    endpoint;
  let findings = Sanitize.findings () in
  if findings <> [] then begin
    prerr_string (Sanitize.render findings);
    prerr_newline ();
    Printf.eprintf "resynthd: sanitizer reported %d finding(s)\n"
      (List.length findings);
    exit 3
  end

(* --- client mode -------------------------------------------------------------------- *)

type action =
  | Submit_benchmark of string
  | Submit_blif of string  (* file path *)
  | Fetch_metrics
  | Send_shutdown
  | Send_raw of string

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let client_main args =
  let sock = ref None and tcp = ref None in
  let action = ref None in
  let id = ref None in
  let verify = ref true in
  let verify_each = ref false and eqcheck_each = ref false in
  let timeout = ref None and poll = ref None in
  let drain = ref true in
  let want_diagnostics = ref false in
  let set_action a =
    match !action with
    | None -> action := Some a
    | Some _ ->
      prerr_endline "resynthd: choose exactly one client action";
      exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--socket" :: path :: rest -> sock := Some path; parse rest
    | "--tcp" :: hp :: rest -> tcp := Some hp; parse rest
    | "--benchmark" :: name :: rest ->
      set_action (Submit_benchmark name);
      parse rest
    | "--blif" :: file :: rest -> set_action (Submit_blif file); parse rest
    | "--metrics" :: rest -> set_action Fetch_metrics; parse rest
    | "--shutdown" :: rest -> set_action Send_shutdown; parse rest
    | "--raw" :: line :: rest -> set_action (Send_raw line); parse rest
    | "--id" :: v :: rest -> id := Some v; parse rest
    | "--no-verify" :: rest -> verify := false; parse rest
    | "--verify-each" :: rest -> verify_each := true; parse rest
    | "--eqcheck-each" :: rest -> eqcheck_each := true; parse rest
    | "--timeout" :: s :: rest ->
      timeout := Some (pos_float "--timeout" s);
      parse rest
    | "--poll" :: s :: rest -> poll := Some (pos_float "--poll" s); parse rest
    | "--no-drain" :: rest -> drain := false; parse rest
    | "--diagnostics" :: rest -> want_diagnostics := true; parse rest
    | arg :: _ ->
      Printf.eprintf "resynthd: unknown client argument %s\n" arg;
      usage ()
  in
  parse args;
  let endpoint = parse_endpoint !sock !tcp in
  let action =
    match !action with
    | Some a -> a
    | None ->
      prerr_endline "resynthd: choose a client action";
      exit 2
  in
  let conn =
    try Serve.Client.connect endpoint
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "resynthd: cannot connect to %s: %s\n"
        (Serve.Daemon.endpoint_to_string endpoint)
        (Unix.error_message e);
      exit 1
  in
  let fail msg =
    Printf.eprintf "resynthd: %s\n" msg;
    Serve.Client.close conn;
    exit 1
  in
  let must = function Ok v -> v | Error msg -> fail msg in
  let submit_doc source_field =
    let open Serve.Json in
    let fields =
      [ ("op", Str "submit") ]
      @ (match !id with Some v -> [ ("id", Str v) ] | None -> [])
      @ [ source_field; ("verify", Bool !verify) ]
      @ (if !verify_each then [ ("verify_each", Bool true) ] else [])
      @ (if !eqcheck_each then [ ("eqcheck_each", Bool true) ] else [])
      @ (match !timeout with Some s -> [ ("timeout_s", Float s) ] | None -> [])
    in
    Obj fields
  in
  let finish_submit doc =
    let reply = must (Serve.Client.submit_and_wait ?poll_s:!poll conn doc) in
    match Serve.Json.mem_bool "ok" reply with
    | Some true ->
      let row =
        match Serve.Json.member "result" reply with
        | Some result -> Serve.Json.mem_str "row" result
        | None -> None
      in
      (match row with
       | Some line -> print_endline line
       | None -> print_endline (Serve.Json.to_string reply));
      if !want_diagnostics then begin
        match Serve.Json.mem_str "id" reply with
        | Some rid ->
          let diag =
            must
              (Serve.Client.request conn
                 (Serve.Json.Obj
                    [ ("op", Serve.Json.Str "diagnostics");
                      ("id", Serve.Json.Str rid) ]))
          in
          prerr_endline (Serve.Json.to_string diag)
        | None -> ()
      end;
      Serve.Client.close conn
    | _ -> fail (Serve.Json.to_string reply)
  in
  (match action with
   | Submit_benchmark name ->
     finish_submit (submit_doc ("benchmark", Serve.Json.Str name))
   | Submit_blif file ->
     let text =
       try read_file file
       with Sys_error msg -> fail msg
     in
     finish_submit (submit_doc ("netlist", Serve.Json.Str text))
   | Fetch_metrics ->
     let reply =
       must
         (Serve.Client.request conn
            (Serve.Json.Obj [ ("op", Serve.Json.Str "metrics") ]))
     in
     (match Serve.Json.mem_str "body" reply with
      | Some body -> print_string body
      | None -> fail (Serve.Json.to_string reply));
     Serve.Client.close conn
   | Send_shutdown ->
     let reply =
       must
         (Serve.Client.request conn
            (Serve.Json.Obj
               [ ("op", Serve.Json.Str "shutdown");
                 ("drain", Serve.Json.Bool !drain) ]))
     in
     print_endline (Serve.Json.to_string reply);
     Serve.Client.close conn
   | Send_raw line ->
     let reply = must (Serve.Client.request_line conn line) in
     print_endline (Serve.Json.to_string reply);
     Serve.Client.close conn)

let () =
  match Array.to_list Sys.argv with
  | _ :: "serve" :: rest -> serve_main rest
  | _ :: "client" :: rest -> client_main rest
  | _ -> usage ()
