(* Standalone Table I regeneration (also part of bench/main.exe).

   Usage: table1 [--jobs N] [--names a,b,c] [--no-verify] [--verify-each]

   --jobs N      run N suite rows in parallel domains (default 1; 0 = one per
                 recommended core).  Output is byte-identical for every N.
   --names       comma-separated subset of suite circuits
   --no-verify   skip the sequential-equivalence check on each flow result
   --verify-each run the netlist verifier (structural rules + journal audit)
                 after every named pass of every flow; the first diagnostic
                 aborts the run naming the circuit and the pass *)

let () =
  let jobs = ref 1 in
  let names = ref None in
  let verify = ref true in
  let verify_each = ref false in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 0 -> jobs := j
       | Some _ | None ->
         prerr_endline "table1: --jobs expects a non-negative integer";
         exit 2);
      parse rest
    | "--names" :: csv :: rest ->
      names := Some (String.split_on_char ',' csv);
      parse rest
    | "--no-verify" :: rest ->
      verify := false;
      parse rest
    | "--verify-each" :: rest ->
      verify_each := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "table1: unknown argument %s\n\
         usage: table1 [--jobs N] [--names a,b,c] [--no-verify] \
         [--verify-each]\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let jobs = if !jobs = 0 then Core.Parallel.default_jobs () else !jobs in
  let t0 = Unix.gettimeofday () in
  let rows =
    try
      Report.Table.run_suite ~verify:!verify ~verify_each:!verify_each
        ?names:!names ~jobs ()
    with Verify.Verification_failed msg ->
      prerr_endline ("table1: " ^ msg);
      exit 1
  in
  print_string (Report.Table.render rows);
  print_newline ();
  print_string (Report.Table.summary rows);
  if !verify_each then
    print_string "verify-each: all pass boundaries clean\n";
  Printf.printf "regenerated in %.1fs (%d jobs)\n"
    (Unix.gettimeofday () -. t0)
    jobs
