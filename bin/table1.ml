(* Standalone Table I regeneration (also part of bench/main.exe).

   Usage: table1 [--jobs N] [--names a,b,c] [--no-verify] [--verify-each]
                 [--verify-json FILE] [--eqcheck-each] [--eqcheck-json FILE]
                 [--trace FILE] [--trace-format chrome|json] [--metrics]
                 [--metrics-json FILE] [--sanitize] [--sanitize-json FILE]

   --jobs N        size of the fork-join worker pool (default 1; 0 = one
                   worker per recommended core).  Rows run in parallel, and
                   workers left idle by the row split steal intra-row tasks
                   (eqcheck boundary checks, verify rule groups, the two
                   verification lanes), so N above the row count still
                   helps.  Output is byte-identical for every N.
   --names         comma-separated subset of suite circuits
   --no-verify     skip the sequential-equivalence check on each flow result
   --verify-each   run the netlist verifier (structural rules + journal
                   audit) after every named pass of every flow; the first
                   diagnostic aborts the run naming the circuit and the pass
   --verify-json   write the final-network static-rule diagnostics (JSON
                   array; requires --verify-each) to FILE
   --eqcheck-each  run the semantic equivalence analyzer at every pass
                   boundary; per-pass Proved / Refuted / Unknown verdicts are
                   reported, and any Refuted verdict exits non-zero
   --eqcheck-json  write the eqcheck verdicts (JSON array) to FILE
   --trace FILE    record per-pass spans and write them to FILE after the run
   --trace-format  chrome (default; Perfetto/chrome://tracing-loadable
                   trace_event JSON, one track per worker domain) or json
                   (the native span array)
   --metrics       enable the metrics registry and print a text summary of
                   counters, gauges and histograms after the table
   --metrics-json  enable the metrics registry and write the full registry
                   (including bdd.* shared-table gauges) as JSON to FILE
   --sanitize      enable the concurrency sanitizer (lock-order, BDD
                   publication protocol, future single-claim, DLS scope
                   stamps; also via SANITIZE=1).  Findings go to stderr and
                   the run exits 3; table output stays byte-identical
   --sanitize-json write the sanitizer findings (JSON array, empty on a
                   clean run) to FILE; implies --sanitize *)

let () =
  let jobs = ref 1 in
  let names = ref None in
  let verify = ref true in
  let verify_each = ref false in
  let eqcheck_each = ref false in
  let eqcheck_json = ref None in
  let verify_json = ref None in
  let trace = ref None in
  let trace_format = ref `Chrome in
  let metrics = ref false in
  let metrics_json = ref None in
  let sanitize = ref false in
  let sanitize_json = ref None in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some j when j >= 0 -> jobs := j
       | Some _ | None ->
         prerr_endline "table1: --jobs expects a non-negative integer";
         exit 2);
      parse rest
    | "--names" :: csv :: rest ->
      names := Some (String.split_on_char ',' csv);
      parse rest
    | "--no-verify" :: rest ->
      verify := false;
      parse rest
    | "--verify-each" :: rest ->
      verify_each := true;
      parse rest
    | "--verify-json" :: file :: rest ->
      verify_json := Some file;
      parse rest
    | "--eqcheck-each" :: rest ->
      eqcheck_each := true;
      parse rest
    | "--eqcheck-json" :: file :: rest ->
      eqcheck_json := Some file;
      parse rest
    | "--trace" :: file :: rest ->
      trace := Some file;
      parse rest
    | "--trace-format" :: fmt :: rest ->
      (match fmt with
       | "chrome" -> trace_format := `Chrome
       | "json" -> trace_format := `Json
       | _ ->
         prerr_endline "table1: --trace-format expects chrome or json";
         exit 2);
      parse rest
    | "--metrics" :: rest ->
      metrics := true;
      parse rest
    | "--metrics-json" :: file :: rest ->
      metrics_json := Some file;
      parse rest
    | "--sanitize" :: rest ->
      sanitize := true;
      parse rest
    | "--sanitize-json" :: file :: rest ->
      sanitize := true;
      sanitize_json := Some file;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "table1: unknown argument %s\n\
         usage: table1 [--jobs N] [--names a,b,c] [--no-verify] \
         [--verify-each] [--verify-json FILE] [--eqcheck-each] \
         [--eqcheck-json FILE] [--trace FILE] [--trace-format chrome|json] \
         [--metrics] [--metrics-json FILE] [--sanitize] [--sanitize-json \
         FILE]\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !names with
   | Some ns ->
     (match Circuits.Suite.unknown_names ns with
      | [] -> ()
      | bad ->
        Printf.eprintf "table1: unknown benchmark%s %s\nvalid names: %s\n"
          (if List.length bad > 1 then "s" else "")
          (String.concat ", " bad)
          (String.concat ", " Circuits.Suite.names);
        exit 2)
   | None -> ());
  let jobs = if !jobs = 0 then Core.Parallel.default_jobs () else !jobs in
  if !sanitize then Sanitize.enable ();
  if !trace <> None then Obs.Trace.enable ();
  if !metrics || !metrics_json <> None || !trace <> None then
    Obs.Metrics.enable ();
  (* lint-waive: nondet/wall-clock — feeds only the elapsed-time banner. *)
  let t0 = Unix.gettimeofday () in
  let rows =
    try
      Report.Table.run_suite ~verify:!verify ~verify_each:!verify_each
        ~eqcheck_each:!eqcheck_each ?names:!names ~jobs ()
    with Verify.Verification_failed msg ->
      prerr_endline ("table1: " ^ msg);
      exit 1
  in
  print_string (Report.Table.render rows);
  print_newline ();
  print_string (Report.Table.summary rows);
  if !verify_each then
    print_string "verify-each: all pass boundaries clean\n";
  let write_file file contents =
    let oc = open_out file in
    output_string oc contents;
    output_char oc '\n';
    close_out oc
  in
  (match !verify_json with
   | Some file ->
     let diags = List.concat_map (fun r -> r.Core.Flow.verify_diags) rows in
     write_file file (Verify.render_json diags)
   | None -> ());
  let eq_refuted = ref 0 in
  if !eqcheck_each then begin
    let records = Report.Table.eqcheck_records rows in
    print_string (Report.Table.eqcheck_summary rows);
    let _, refuted, _ = Eqcheck.counts records in
    eq_refuted := refuted;
    if refuted > 0 then begin
      print_string "eqcheck REFUTED passes:\n";
      List.iter
        (fun r ->
          match r.Eqcheck.verdict with
          | Eqcheck.Refuted _ ->
            print_string (Eqcheck.render [ r ]);
            print_newline ()
          | Eqcheck.Proved | Eqcheck.Unknown _ -> ())
        records
    end;
    match !eqcheck_json with
    | Some file -> write_file file (Eqcheck.render_json records)
    | None -> ()
  end;
  (match !trace with
   | Some file ->
     let contents =
       match !trace_format with
       | `Chrome -> Obs.Export.chrome_json ()
       | `Json -> Obs.Export.spans_json ()
     in
     Obs.Export.write_file file contents;
     Printf.printf "trace: %d spans written to %s\n"
       (List.length (Obs.Trace.spans ()))
       file
   | None -> ());
  (match !metrics_json with
   | Some file ->
     Bdd.publish_stats ();
     Techmap.publish_stats ();
     Sanitize.publish_stats ();
     Obs.Export.write_file file (Obs.Export.metrics_json ());
     Printf.printf "metrics: written to %s\n" file
   | None -> ());
  if !metrics then begin
    Bdd.publish_stats ();
    Techmap.publish_stats ();
    Sanitize.publish_stats ();
    print_string (Obs.Export.text_summary ())
  end;
  (* sanitizer findings go to stderr only, so a sanitized run's stdout can
     be compared byte-for-byte against an uninstrumented one *)
  let san_findings = if !sanitize then Sanitize.findings () else [] in
  (match !sanitize_json with
   | Some file -> write_file file (Sanitize.render_json san_findings)
   | None -> ());
  if san_findings <> [] then begin
    prerr_string (Sanitize.render san_findings);
    prerr_newline ();
    Printf.eprintf "table1: sanitizer reported %d finding(s)\n"
      (List.length san_findings)
  end;
  Printf.printf "regenerated in %.1fs (%d jobs)\n"
    (Unix.gettimeofday () -. t0) (* lint-waive: nondet/wall-clock — elapsed-time banner only *)
    jobs;
  if san_findings <> [] then exit 3;
  if !eq_refuted > 0 then exit 1
